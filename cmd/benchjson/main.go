// Command benchjson measures the repository's figure benchmarks (the
// single-load-point renditions of the Section 6 figures that
// bench_test.go runs) and writes the results as JSON, one record per
// figure and algorithm with ns/op and allocs/op. The driver writes
// BENCH_<pr>.json files with it so successive changes have a recorded
// performance trajectory.
//
// Usage:
//
//	benchjson [-o BENCH_1.json] [-benchtime 2s] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"turnmodel/internal/exp"
	"turnmodel/internal/sim"
)

// figureBenches mirrors the Benchmark* figure entries in bench_test.go:
// one moderate load point per figure, every algorithm line.
var figureBenches = []struct {
	Name  string
	FigID string
	Load  float64
}{
	{"Fig13UniformMesh", "fig13", 1.25},
	{"Fig14TransposeMesh", "fig14", 1.75},
	{"Fig15TransposeCube", "fig15", 2.5},
	{"Fig16ReverseFlipCube", "fig16", 2.5},
}

type record struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	Iterations   int     `json:"iterations"`
	AvgLatencyUs float64 `json:"latency_us"`
	Throughput   float64 `json:"tput_flits_per_us"`
}

type report struct {
	Schema     string   `json:"schema"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	os.Exit(run())
}

func run() int {
	testing.Init() // registers -test.benchtime, which paces testing.Benchmark
	out := flag.String("o", "", "output file (default stdout)")
	benchtime := flag.String("benchtime", "2s", "run time per benchmark: duration or Nx iteration count")
	quick := flag.Bool("quick", false, "run each benchmark exactly twice instead of for -benchtime")
	flag.Parse()
	if *quick {
		*benchtime = "2x"
	}
	if f := flag.Lookup("test.benchtime"); f != nil {
		if err := f.Value.Set(*benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -benchtime:", err)
			return 2
		}
	}

	rep := report{
		Schema:     "turnmodel-bench-v1: one op = one full simulation at the figure's load point",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, fb := range figureBenches {
		f, ok := exp.FigureByID(fb.FigID)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: unknown figure %s\n", fb.FigID)
			return 1
		}
		t := f.Topology()
		pat := f.Pattern(t)
		for _, alg := range f.Algs(t) {
			cfg := sim.Config{
				Algorithm:     alg,
				Pattern:       pat,
				OfferedLoad:   fb.Load,
				WarmupCycles:  2000,
				MeasureCycles: 6000,
			}
			var last sim.Result
			var simErr error
			bench := func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg.Seed = int64(i + 1)
					r, err := sim.Run(cfg)
					if err != nil {
						simErr = err
						b.FailNow()
					}
					last = r
				}
			}
			name := fb.Name + "/" + alg.Name()
			fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", name)
			res := testing.Benchmark(bench)
			if simErr != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, simErr)
				return 1
			}
			rep.Benchmarks = append(rep.Benchmarks, record{
				Name:         name,
				NsPerOp:      res.NsPerOp(),
				AllocsPerOp:  res.AllocsPerOp(),
				BytesPerOp:   res.AllocedBytesPerOp(),
				Iterations:   res.N,
				AvgLatencyUs: last.AvgLatency,
				Throughput:   last.Throughput,
			})
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}
