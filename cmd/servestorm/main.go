// Command servestorm is the kill/restart chaos harness for turnserver:
// it proves the crash-safety contract against a real process with real
// SIGKILLs, not an in-process simulation.
//
// The campaign:
//
//  1. Reference phase: a clean server (its own journal) runs every
//     round's job to completion; the result bytes are the oracle.
//  2. Kill rounds: a second server (one shared journal across rounds)
//     receives a job, is SIGKILLed mid-run after a seeded random
//     delay, and is restarted. The restart must replay the journal,
//     pass /healthz and /readyz, re-run the interrupted job, and serve
//     — over both GET /result and the SSE stream — bytes identical to
//     the reference. Jobs finished in earlier rounds must still be
//     served (from the journal, not re-run) with identical bytes.
//  3. Deadline round: a job that would run for ~2^30 cycles is
//     submitted with timeout_seconds=1 and must reach the terminal
//     "timeout" state promptly.
//  4. Shutdown: SIGTERM must produce a clean exit.
//
// Panic quarantine (poisoned jobs) needs a fault injected inside the
// process, so it is exercised by the in-package tests instead
// (internal/serve TestPanicQuarantine, TestJournalPoisonedNeverReruns).
//
// Exit status 0 means every check passed. Any divergence — byte
// mismatch, replay miss, probe failure, unclean exit — is fatal.
//
// Usage (CI runs this with a -race server binary):
//
//	go build -race -o /tmp/turnserver ./cmd/turnserver
//	go run ./cmd/servestorm -server /tmp/turnserver -kills 2
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	server := flag.String("server", "", "turnserver binary to storm (empty: go build ./cmd/turnserver)")
	addr := flag.String("addr", "127.0.0.1:18091", "address the stormed server listens on")
	kills := flag.Int("kills", 2, "SIGKILL rounds (one interrupted job each)")
	seed := flag.Int64("seed", 1, "seed for kill delays and job identities")
	wait := flag.Duration("wait", 5*time.Minute, "per-job completion budget")
	warmup := flag.Int64("warmup", 100000, "warmup cycles per kill-round job (size the job to the machine: it must outlive the kill delay)")
	measure := flag.Int64("measure", 200000, "measurement cycles per kill-round job")
	flag.Parse()
	if err := run(*server, *addr, *kills, *seed, *wait, *warmup, *measure); err != nil {
		fmt.Fprintf(os.Stderr, "servestorm: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servestorm: all checks passed")
}

// jobBody is the POST body of round i: deterministic (fixed seed), and
// — at the default cycle counts — long enough that a SIGKILL lands
// mid-run even on a fast machine.
func jobBody(seed int64, round int, warmup, measure int64) string {
	return fmt.Sprintf(`{"figure":"fig13","quick":true,"seed":%d,"loads":[0.5],"warmup_cycles":%d,"measure_cycles":%d}`,
		seed*1000+int64(round), warmup, measure)
}

// timeoutBody would run ~2^30 cycles without its one-second deadline.
func timeoutBody(seed int64) string {
	return fmt.Sprintf(`{"figure":"fig13","seed":%d,"loads":[0.5],"warmup_cycles":1073741824,"measure_cycles":1,"timeout_seconds":1}`,
		seed*1000+999)
}

func run(server, addr string, kills int, seed int64, wait time.Duration, warmup, measure int64) error {
	dir, err := os.MkdirTemp("", "servestorm")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if server == "" {
		server = filepath.Join(dir, "turnserver")
		build := exec.Command("go", "build", "-o", server, "./cmd/turnserver")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building turnserver: %v", err)
		}
	}
	base := "http://" + addr
	rng := rand.New(rand.NewSource(seed))

	// Phase 1: reference results from an uninterrupted server.
	fmt.Println("servestorm: reference phase")
	ref, err := startServer(server, addr, filepath.Join(dir, "reference.jsonl"))
	if err != nil {
		return err
	}
	want := make(map[int][]byte, kills)
	for round := 0; round < kills; round++ {
		id, err := submit(base, jobBody(seed, round, warmup, measure))
		if err != nil {
			ref.stop()
			return fmt.Errorf("reference submit round %d: %v", round, err)
		}
		if _, err := waitJob(base, id, wait, "done"); err != nil {
			ref.stop()
			return fmt.Errorf("reference round %d: %v", round, err)
		}
		want[round], err = get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			ref.stop()
			return fmt.Errorf("reference result round %d: %v", round, err)
		}
	}
	if err := ref.stop(); err != nil {
		return fmt.Errorf("reference server shutdown: %v", err)
	}

	// Phase 2: kill rounds against one shared journal.
	journal := filepath.Join(dir, "chaos.jsonl")
	ids := make(map[int]string, kills)
	srv, err := startServer(server, addr, journal)
	if err != nil {
		return err
	}
	reruns := 0
	for round := 0; round < kills; round++ {
		id, err := submit(base, jobBody(seed, round, warmup, measure))
		if err != nil {
			srv.stop()
			return fmt.Errorf("round %d submit: %v", round, err)
		}
		ids[round] = id
		// Kill as soon as the job is observed running, plus a small
		// seeded jitter so successive rounds land the SIGKILL at
		// different points of the sweep. If the machine is so fast the
		// job finished first, the round still verifies the journal-
		// restored result below.
		st, err := waitJob(base, id, wait, "running", "done")
		if err != nil {
			srv.stop()
			return fmt.Errorf("round %d: %v", round, err)
		}
		midRun := st.State == "running"
		if midRun {
			time.Sleep(time.Duration(rng.Intn(200)) * time.Millisecond)
		}
		fmt.Printf("servestorm: round %d: SIGKILL (mid-run: %v)\n", round, midRun)
		srv.kill()

		if srv, err = startServer(server, addr, journal); err != nil {
			return fmt.Errorf("round %d restart: %v", round, err)
		}
		st, err = waitJob(base, id, wait, "done")
		if err != nil {
			srv.stop()
			return fmt.Errorf("round %d replay: %v", round, err)
		}
		if !st.Replayed {
			srv.stop()
			return fmt.Errorf("round %d: job not restored from the journal: %+v", round, st)
		}
		if st.Attempt >= 2 {
			reruns++
		} else if midRun {
			srv.stop()
			return fmt.Errorf("round %d: interrupted job was not re-run: %+v", round, st)
		}
		// Every round so far must serve reference-identical bytes over
		// both endpoints: the fresh re-run and the journal-restored
		// results of earlier rounds alike.
		for r := 0; r <= round; r++ {
			got, err := get(base + "/v1/jobs/" + ids[r] + "/result")
			if err != nil {
				srv.stop()
				return fmt.Errorf("round %d result of job %d: %v", round, r, err)
			}
			if !bytes.Equal(got, want[r]) {
				srv.stop()
				return fmt.Errorf("round %d: job %d result diverged from the uninterrupted reference", round, r)
			}
			stream, err := get(base + "/v1/jobs/" + ids[r] + "/stream")
			if err != nil {
				srv.stop()
				return fmt.Errorf("round %d stream of job %d: %v", round, r, err)
			}
			if got := sseResult(string(stream)); got != string(want[r]) {
				srv.stop()
				return fmt.Errorf("round %d: job %d streamed result diverged from the reference", round, r)
			}
		}
		fmt.Printf("servestorm: round %d: replay converged byte-identically\n", round)
	}
	if reruns == 0 {
		srv.stop()
		return fmt.Errorf("no round ever re-ran an interrupted job; raise the job size")
	}

	// Phase 3: the deadline round.
	fmt.Println("servestorm: deadline round")
	id, err := submit(base, timeoutBody(seed))
	if err != nil {
		srv.stop()
		return fmt.Errorf("deadline submit: %v", err)
	}
	begin := time.Now()
	st, err := waitJob(base, id, 30*time.Second, "timeout")
	if err != nil {
		srv.stop()
		return fmt.Errorf("deadline round: %v", err)
	}
	if !strings.Contains(st.Error, "deadline exceeded") {
		srv.stop()
		return fmt.Errorf("deadline round: terminal error = %q", st.Error)
	}
	fmt.Printf("servestorm: deadline enforced in %v\n", time.Since(begin).Round(time.Millisecond))

	// Phase 4: clean SIGTERM shutdown.
	if err := srv.stop(); err != nil {
		return fmt.Errorf("final shutdown: %v", err)
	}
	return nil
}

// proc is one running turnserver.
type proc struct {
	cmd  *exec.Cmd
	done chan error
}

// startServer launches the binary and waits for /healthz and /readyz.
func startServer(bin, addr, journal string) (*proc, error) {
	cmd := exec.Command(bin, "-addr", addr, "-journal", journal, "-quiet")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	base := "http://" + addr
	deadline := time.Now().Add(30 * time.Second)
	for _, probe := range []string{"/healthz", "/readyz"} {
		for {
			resp, err := http.Get(base + probe)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				p.kill()
				return nil, fmt.Errorf("server never passed %s", probe)
			}
			select {
			case err := <-p.done:
				return nil, fmt.Errorf("server exited during startup: %v", err)
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	return p, nil
}

// kill SIGKILLs the server — the crash under test — and reaps it.
func (p *proc) kill() {
	p.cmd.Process.Kill()
	<-p.done
}

// stop SIGTERMs the server and requires a clean exit.
func (p *proc) stop() error {
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.done:
		return err
	case <-time.After(30 * time.Second):
		p.kill()
		return fmt.Errorf("server ignored SIGTERM for 30s")
	}
}

// jobStatus is the subset of the status body the harness checks.
type jobStatus struct {
	State    string `json:"state"`
	Replayed bool   `json:"replayed"`
	Attempt  int    `json:"attempt"`
	Error    string `json:"error"`
}

// submit POSTs a job body and returns the job ID.
func submit(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("submit = %d: %s", resp.StatusCode, b)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &sr); err != nil || sr.ID == "" {
		return "", fmt.Errorf("bad submit response %q: %v", b, err)
	}
	return sr.ID, nil
}

// waitJob polls a job until it reaches one of the wanted states,
// failing fast on any other terminal state.
func waitJob(base, id string, budget time.Duration, wants ...string) (jobStatus, error) {
	deadline := time.Now().Add(budget)
	var st jobStatus
	for {
		b, err := get(base + "/v1/jobs/" + id)
		if err == nil {
			if err := json.Unmarshal(b, &st); err != nil {
				return st, fmt.Errorf("bad status body %q: %v", b, err)
			}
			for _, want := range wants {
				if st.State == want {
					return st, nil
				}
			}
			switch st.State {
			case "done", "failed", "canceled", "timeout", "poisoned":
				return st, fmt.Errorf("job %s reached %s (%s) while waiting for %v", id, st.State, st.Error, wants)
			}
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s stuck in %q waiting for %v", id, st.State, wants)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// get fetches a URL, requiring 200.
func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return b, nil
}

// sseResult reassembles the data lines of the stream's result event
// (SSE multi-line data joins with newlines).
func sseResult(stream string) string {
	_, after, found := strings.Cut(stream, "event: result\n")
	if !found {
		return ""
	}
	var lines []string
	for _, line := range strings.Split(after, "\n") {
		if line == "" {
			break
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			return ""
		}
		lines = append(lines, data)
	}
	return strings.Join(lines, "\n") + "\n"
}
