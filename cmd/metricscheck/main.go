// Command metricscheck validates a metrics dump directory written by
// turnsim -metrics (or any directory holding manifest.json, metrics.prom
// and heatmap.txt): the manifest must be well-formed JSON with sane
// totals, every Prometheus line must parse under the text exposition
// format, and the heatmap must be non-empty. It exits nonzero on the
// first malformed artifact, so CI can gate on it.
//
// Usage:
//
//	metricscheck dir [dir...]
//	metricscheck -figures dir    # validate <id>.metrics.json figure dumps
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"turnmodel/internal/metrics"
)

func main() {
	figures := flag.Bool("figures", false, "validate per-figure *.metrics.json dumps instead of a single-run dump directory")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-figures] dir [dir...]")
		os.Exit(2)
	}
	failed := false
	for _, dir := range flag.Args() {
		var err error
		if *figures {
			err = checkFigureDumps(dir)
		} else {
			err = checkRunDir(dir)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", dir, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", dir)
	}
	if failed {
		os.Exit(1)
	}
}

// checkRunDir validates the three artifacts of a single-run dump.
func checkRunDir(dir string) error {
	man, err := readManifest(filepath.Join(dir, metrics.ManifestFile))
	if err != nil {
		return err
	}
	if err := checkSummary(man.Summary); err != nil {
		return fmt.Errorf("%s: %w", metrics.ManifestFile, err)
	}
	if len(man.Routers) == 0 {
		return fmt.Errorf("%s: no per-router blocks", metrics.ManifestFile)
	}
	if err := checkPrometheus(filepath.Join(dir, metrics.PrometheusFile)); err != nil {
		return err
	}
	hm, err := os.ReadFile(filepath.Join(dir, metrics.HeatmapFile))
	if err != nil {
		return err
	}
	if len(strings.TrimSpace(string(hm))) == 0 {
		return fmt.Errorf("%s: empty heatmap", metrics.HeatmapFile)
	}
	return nil
}

func readManifest(path string) (metrics.Manifest, error) {
	var man metrics.Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return man, nil
}

// checkSummary sanity-checks network-wide totals: a real run observed
// cycles and conserved flits.
func checkSummary(s metrics.Summary) error {
	if s.Cycles <= 0 {
		return fmt.Errorf("summary reports %d cycles", s.Cycles)
	}
	if s.InjectedFlits < s.DeliveredFlits {
		return fmt.Errorf("delivered %d flits but injected only %d", s.DeliveredFlits, s.InjectedFlits)
	}
	if s.MaxChannelUtilization < 0 || s.MaxChannelUtilization > 1 {
		return fmt.Errorf("max channel utilization %v outside [0,1]", s.MaxChannelUtilization)
	}
	return nil
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)

// checkPrometheus validates every line of a text-format dump.
func checkPrometheus(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	samples := 0
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				return fmt.Errorf("%s:%d: malformed comment line %q", filepath.Base(path), i+1, line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("%s:%d: malformed sample line %q", filepath.Base(path), i+1, line)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("%s: no sample lines", filepath.Base(path))
	}
	return nil
}

// checkFigureDumps validates every *.metrics.json in dir.
func checkFigureDumps(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.metrics.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.metrics.json files")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var dump struct {
			ID     string `json:"id"`
			Series []struct {
				Algorithm string `json:"algorithm"`
				Points    []struct {
					Summary metrics.Summary `json:"summary"`
				} `json:"points"`
			} `json:"series"`
		}
		if err := json.Unmarshal(data, &dump); err != nil {
			return fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		if dump.ID == "" || len(dump.Series) == 0 {
			return fmt.Errorf("%s: empty dump", filepath.Base(path))
		}
		for _, s := range dump.Series {
			for _, p := range s.Points {
				if err := checkSummary(p.Summary); err != nil {
					return fmt.Errorf("%s: %s: %w", filepath.Base(path), s.Algorithm, err)
				}
			}
		}
	}
	return nil
}
