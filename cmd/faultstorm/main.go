// Command faultstorm runs randomized fault-injection campaigns against
// one simulator configuration and verifies that the engine survives
// them: every campaign runs with the structural invariant checker armed,
// and every generated packet must be accounted for as delivered, dropped
// or still in flight when the run ends. It exits nonzero on the first
// violation, which makes it suitable as a CI chaos smoke test:
//
//	faultstorm -topo mesh8x8 -alg west-first -campaigns 4 -rate 2 -recovery 512
//	faultstorm -topo torus6x2 -classes wormhole,multivc,chained-saf -shards 2
//
// Each campaign perturbs the seed, so one invocation covers several
// independent fault schedules, and -classes repeats them per switching
// class (multi-VC and chained store-and-forward included) so the
// conflict-partitioned parallel move is stormed too. The tool also reports the routing
// relation's unroutable source/destination pairs under the final fault
// set of each campaign's plan, quantifying how much connectivity the
// schedule destroyed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"turnmodel/internal/cli"
	"turnmodel/internal/core"
	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
)

func main() {
	topoFlag := flag.String("topo", "mesh8x8", "topology: meshAxB[xC...], cubeN, torusKxN")
	algFlag := flag.String("alg", "west-first", "routing algorithm")
	nonminimal := flag.Bool("nonminimal", false, "use the nonminimal west-first relation (detours around faults; ignores -alg)")
	trafficFlag := flag.String("traffic", "uniform", "traffic pattern")
	load := flag.Float64("load", 1.0, "offered load in flits/us/node")
	cycles := flag.Int64("cycles", 20000, "simulated cycles per campaign")
	seed := flag.Int64("seed", 1, "base random seed (campaign i uses seed+i)")
	rate := flag.Float64("rate", 2, "fault onsets per 1000 cycles")
	mttr := flag.Int64("mttr", 2000, "mean time to repair in cycles (0 = permanent faults)")
	campaigns := flag.Int("campaigns", 4, "independent fault campaigns to run")
	shards := flag.Int("shards", 0, "engine shards (0 = serial, -1 = auto from GOMAXPROCS and network size; results identical)")
	recovery := flag.Int64("recovery", 512, "deadlock-recovery watchdog threshold in cycles (0 = recovery off)")
	retries := flag.Int("retries", 8, "recovery retry budget per packet (negative = drop on first abort)")
	backoff := flag.Int64("backoff", 0, "base retry backoff in cycles (0 = recovery threshold)")
	misroute := flag.Int64("misroute", 0, "misroute patience in cycles (nonminimal relations)")
	check := flag.Bool("check", true, "run the structural invariant checker")
	verbose := flag.Bool("v", false, "print each campaign's fault schedule size and result line")
	classesFlag := flag.String("classes", "wormhole", "comma-separated switching classes to storm: wormhole, multivc, chained-saf. multivc swaps in a 2-VC relation (dateline-dor on tori, double-y on meshes) and ignores -alg/-nonminimal; chained-saf runs -alg under chained store-and-forward")
	flag.Parse()

	tbl := stats.NewTable("class", "campaign", "faults", "unroutable", "delivered", "dropped", "in-flight",
		"recoveries", "retries", "stranded", "deadlock")
	failed := false
	for _, class := range strings.Split(*classesFlag, ",") {
		class = strings.TrimSpace(class)
		for i := 0; i < *campaigns; i++ {
			t, err := cli.ParseTopology(*topoFlag)
			fatal(err)
			var alg routing.Algorithm
			if *nonminimal {
				alg = routing.NewTurnGraphRouting(t, core.WestFirstSet(), false)
				if *misroute == 0 {
					*misroute = 8
				}
			} else {
				alg, err = cli.ParseAlgorithm(t, *algFlag)
				fatal(err)
			}
			pat, err := cli.ParseTraffic(t, *trafficFlag)
			fatal(err)

			plan, err := fault.NewCampaign(t, fault.Campaign{
				Seed:    *seed + int64(i),
				Horizon: *cycles,
				Rate:    *rate,
				MTTR:    *mttr,
			})
			fatal(err)

			cfg := sim.Config{
				Algorithm:         alg,
				Pattern:           pat,
				OfferedLoad:       *load,
				WarmupCycles:      *cycles / 4,
				MeasureCycles:     *cycles - *cycles/4,
				Seed:              *seed + int64(i),
				MisrouteAfter:     *misroute,
				Shards:            *shards,
				FaultPlan:         plan,
				RecoveryThreshold: *recovery,
				RetryLimit:        *retries,
				RetryBackoff:      *backoff,
				CheckInvariants:   *check,
			}
			var vcalg routing.VCAlgorithm
			switch class {
			case "wormhole":
			case "multivc":
				// Per-link VC wait chains under faults: the class the
				// conflict-partitioned move must keep bit-identical.
				name := "double-y"
				if t.Kind() == topology.KindTorus {
					name = "dateline-dor"
				}
				vcalg, err = cli.ParseVCAlgorithm(t, name)
				fatal(err)
				cfg.Algorithm = nil
				cfg.VCAlgorithm = vcalg
			case "chained-saf":
				// Same-cycle cross-router SAF cascades under faults.
				cfg.Switching = sim.StoreAndForward
				cfg.Lengths = []int{6, 12}
			default:
				fatal(fmt.Errorf("unknown -classes entry %q (known: wormhole, multivc, chained-saf)", class))
			}

			res, err := sim.Run(cfg)
			fatal(err)

			// Connectivity damage of the schedule's final fault set: replay
			// the plan to its end on a fresh driver, count the pairs the
			// relation cannot serve, then heal the topology again.
			count := func() int { return routing.UnroutablePairs(alg) }
			if vcalg != nil {
				count = func() int { return routing.UnroutablePairsVC(vcalg) }
			}
			unroutable, err := unroutableAtEnd(t, plan, *cycles, count)
			fatal(err)

			deadlock := "no"
			if res.Deadlocked {
				deadlock = fmt.Sprintf("@%d", res.DeadlockCycle)
			}
			tbl.AddRow(class, fmt.Sprint(i), fmt.Sprint(len(plan.Events)), fmt.Sprint(unroutable),
				fmt.Sprint(res.PacketsDeliveredTotal), fmt.Sprint(res.PacketsDropped),
				fmt.Sprint(res.PacketsInFlight), fmt.Sprint(res.Recoveries),
				fmt.Sprint(res.Retries), fmt.Sprint(res.StrandedFlits), deadlock)
			if *verbose {
				fmt.Printf("%s campaign %d: %d fault events, %s\n", class, i, len(plan.Events), res)
			}

			if res.InvariantViolation != "" {
				fmt.Fprintf(os.Stderr, "faultstorm: %s campaign %d: invariant violation: %s\n", class, i, res.InvariantViolation)
				failed = true
			}
			// Conservation: every packet the run generated is delivered,
			// dropped, or still in flight — nothing vanishes.
			if got := res.PacketsDeliveredTotal + res.PacketsDropped + res.PacketsInFlight; got != res.PacketsGeneratedTotal {
				fmt.Fprintf(os.Stderr, "faultstorm: %s campaign %d: packet accounting broken: delivered+dropped+in-flight %d != generated %d\n",
					class, i, got, res.PacketsGeneratedTotal)
				failed = true
			}
			if res.StrandedFlits < 0 {
				fmt.Fprintf(os.Stderr, "faultstorm: %s campaign %d: negative stranded-flit count %d\n", class, i, res.StrandedFlits)
				failed = true
			}
		}
	}
	algName := *algFlag
	if *nonminimal {
		algName = "west-first (nonminimal)"
	}
	fmt.Printf("%s/%s on %s, load %.2f, rate %.1f/kcycle, mttr %d, recovery %d, classes %s:\n%s",
		algName, *trafficFlag, *topoFlag, *load, *rate, *mttr, *recovery, *classesFlag, tbl)
	if failed {
		os.Exit(1)
	}
	fmt.Println("all campaigns conserved packets and passed invariant checks")
}

// unroutableAtEnd applies plan's full schedule to t, calls count to
// tally the relation's unroutable ordered pairs under the resulting
// fault set, and restores the topology to health.
func unroutableAtEnd(t *topology.Topology, plan *fault.Plan, horizon int64, count func() int) (int, error) {
	drv, err := fault.NewDriver(t, plan)
	if err != nil {
		return 0, err
	}
	if _, err := drv.Advance(horizon); err != nil {
		return 0, err
	}
	n := count()
	if err := drv.Reset(); err != nil {
		return 0, err
	}
	return n, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultstorm:", err)
		os.Exit(1)
	}
}
