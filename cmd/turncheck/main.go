// Command turncheck verifies deadlock freedom of a routing algorithm on
// a topology by building its channel dependency graph and checking it
// for cycles (the Dally-Seitz condition behind Theorems 2-5). With a
// cyclic graph it prints a witness dependency cycle.
//
// Usage:
//
//	turncheck -topo mesh8x8 -alg west-first
//	turncheck -topo mesh8x8 -alg fully-adaptive     # prints a cycle
//	turncheck -topo torus8x2 -alg dateline-dor      # virtual channels
//	turncheck -topo mesh6x6 -prohibit "north->west,south->west"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"turnmodel/internal/cli"
	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/topology"
)

func main() {
	topoFlag := flag.String("topo", "mesh8x8", "topology: meshAxB[xC...], cubeN, torusKxN")
	algFlag := flag.String("alg", "", "routing algorithm to check")
	prohibitFlag := flag.String("prohibit", "", "comma-separated prohibited turns (e.g. \"north->west,south->west\") to check as a turn set")
	flag.Parse()

	t, err := cli.ParseTopology(*topoFlag)
	check(err)

	if *prohibitFlag != "" {
		set := core.NewSet(t.NumDims()).WithName("cli")
		for _, s := range strings.Split(*prohibitFlag, ",") {
			turn, err := parseTurn(strings.TrimSpace(s))
			check(err)
			set.Prohibit(turn)
		}
		ok, intact := set.BreaksAllAbstractCycles()
		fmt.Printf("%v\nbreaks all abstract cycles: %v\n", set, ok)
		if !ok {
			fmt.Printf("fully allowed cycles: %v\n", intact)
		}
		res := deadlock.CheckTurnSet(t, set)
		fmt.Printf("turn-relation dependency graph on %v: %v\n", t, res)
		if !res.DeadlockFree {
			os.Exit(1)
		}
		return
	}

	if *algFlag == "" {
		fmt.Fprintln(os.Stderr, "turncheck: provide -alg or -prohibit")
		os.Exit(2)
	}
	valg, err := cli.ParseVCAlgorithm(t, *algFlag)
	check(err)
	if valg.NumVCs() > 1 {
		res := deadlock.CheckVC(valg)
		fmt.Printf("%s on %v: %v\n", valg.Name(), t, res)
		if !res.DeadlockFree {
			os.Exit(1)
		}
		return
	}
	alg, err := cli.ParseAlgorithm(t, *algFlag)
	check(err)
	res := deadlock.Check(alg)
	fmt.Printf("%s on %v: %v\n", alg.Name(), t, res)
	if !res.DeadlockFree {
		os.Exit(1)
	}
}

func parseTurn(s string) (core.Turn, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return core.Turn{}, fmt.Errorf("turn must be from->to, got %q", s)
	}
	from, err := parseDir(strings.TrimSpace(parts[0]))
	if err != nil {
		return core.Turn{}, err
	}
	to, err := parseDir(strings.TrimSpace(parts[1]))
	if err != nil {
		return core.Turn{}, err
	}
	return core.Turn{From: from, To: to}, nil
}

func parseDir(s string) (topology.Direction, error) {
	switch s {
	case "west", "w":
		return topology.Direction{Dim: 0}, nil
	case "east", "e":
		return topology.Direction{Dim: 0, Pos: true}, nil
	case "south", "s":
		return topology.Direction{Dim: 1}, nil
	case "north", "n":
		return topology.Direction{Dim: 1, Pos: true}, nil
	}
	if len(s) >= 2 && (s[0] == '+' || s[0] == '-') {
		dim, err := strconv.Atoi(s[1:])
		if err != nil {
			return topology.Direction{}, fmt.Errorf("bad direction %q", s)
		}
		return topology.Direction{Dim: dim, Pos: s[0] == '+'}, nil
	}
	return topology.Direction{}, fmt.Errorf("bad direction %q", s)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "turncheck:", err)
		os.Exit(1)
	}
}
