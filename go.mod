module turnmodel

go 1.22
