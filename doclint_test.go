package turnmodel_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedDeclarationsDocumented walks every non-test source file in
// the repository and fails on exported top-level functions, types,
// methods and grouped declarations that lack a doc comment — keeping the
// "doc comments on every public item" deliverable honest.
func TestExportedDeclarationsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "results" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if f.Name.Name == "main" {
			return nil // commands document themselves in the package comment
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, pos(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				// A group comment documents the group; otherwise each
				// exported spec needs its own.
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, pos(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing, pos(fset, s.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported declaration: %s", m)
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
