// Benchmarks: one per paper table and figure (short, single-load-point
// renditions of the experiments in internal/exp — run cmd/experiments
// for the full sweeps), plus ablation benches for the simulator design
// choices called out in DESIGN.md and microbenchmarks for the hot paths.
//
// Simulation benches report the paper's two metrics per run:
// latency_us (average message latency) and tput_flits/us (network
// throughput), alongside the usual ns/op.
package turnmodel_test

import (
	"fmt"
	"math/big"
	"testing"

	"turnmodel"
	"turnmodel/internal/adapt"
	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/exp"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// benchSim runs one simulation per iteration and reports the paper's
// metrics.
func benchSim(b *testing.B, cfg sim.Config) {
	b.ReportAllocs()
	var last sim.Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgLatency, "latency_us")
	b.ReportMetric(last.Throughput, "tput_flits/us")
}

func benchFigure(b *testing.B, figID string, load float64) {
	f, ok := exp.FigureByID(figID)
	if !ok {
		b.Fatalf("unknown figure %s", figID)
	}
	t := f.Topology()
	pat := f.Pattern(t)
	for _, alg := range f.Algs(t) {
		b.Run(alg.Name(), func(b *testing.B) {
			benchSim(b, sim.Config{
				Algorithm:     alg,
				Pattern:       pat,
				OfferedLoad:   load,
				WarmupCycles:  2000,
				MeasureCycles: 6000,
			})
		})
	}
}

// BenchmarkFig13UniformMesh: Figure 13 (uniform traffic, 16x16 mesh) at
// a moderate load point.
func BenchmarkFig13UniformMesh(b *testing.B) { benchFigure(b, "fig13", 1.25) }

// BenchmarkFig14TransposeMesh: Figure 14 (matrix transpose, 16x16 mesh).
func BenchmarkFig14TransposeMesh(b *testing.B) { benchFigure(b, "fig14", 1.75) }

// BenchmarkFig15TransposeCube: Figure 15 (matrix transpose, 8-cube).
func BenchmarkFig15TransposeCube(b *testing.B) { benchFigure(b, "fig15", 2.5) }

// BenchmarkFig16ReverseFlipCube: Figure 16 (reverse-flip, 8-cube).
func BenchmarkFig16ReverseFlipCube(b *testing.B) { benchFigure(b, "fig16", 2.5) }

// BenchmarkFig1Deadlock: the Figure 1 four-packet deadlock scenario,
// detection included.
func BenchmarkFig1Deadlock(b *testing.B) {
	mesh := turnmodel.NewMesh(2, 2)
	alg := routing.NewFullyAdaptive(mesh)
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFigure1(alg, 1)
		if err != nil || !r.Deadlocked {
			b.Fatalf("expected deadlock: %v %v", r, err)
		}
	}
}

// BenchmarkTableSec5PCube: the Section 5 ten-cube table regeneration.
func BenchmarkTableSec5PCube(b *testing.B) {
	cube := topology.NewHypercube(10)
	for i := 0; i < b.N; i++ {
		rows := adapt.PCubeWalkChoices(cube, 0b1011010100, 0b0010111001, []int{2, 9, 6, 5, 0, 3})
		if len(rows) != 7 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTableTurnPairs: the Section 3 twelve-of-sixteen
// classification (CDG build + cycle check for all 16 sets).
func BenchmarkTableTurnPairs(b *testing.B) {
	mesh := topology.NewMesh(6, 6)
	sets := core.OneTurnPerCyclePairs2D()
	for i := 0; i < b.N; i++ {
		free := 0
		for _, s := range sets {
			if deadlock.CheckTurnSet(mesh, s).DeadlockFree {
				free++
			}
		}
		if free != 12 {
			b.Fatalf("got %d", free)
		}
	}
}

// BenchmarkTheorem2Numbering: west-first CDG build plus numbering
// verification on the paper's 16x16 mesh.
func BenchmarkTheorem2Numbering(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	alg := routing.NewWestFirst(mesh)
	for i := 0; i < b.N; i++ {
		g := deadlock.BuildCDG(alg)
		if v := deadlock.VerifyMonotone(g, deadlock.WestFirstNumbering(mesh), deadlock.Decreasing); len(v) != 0 {
			b.Fatal("violations")
		}
	}
}

// BenchmarkTheorem5Numbering: negative-first on the 8-cube.
func BenchmarkTheorem5Numbering(b *testing.B) {
	cube := topology.NewHypercube(8)
	alg := routing.NewNegativeFirst(cube)
	for i := 0; i < b.N; i++ {
		g := deadlock.BuildCDG(alg)
		if v := deadlock.VerifyMonotone(g, deadlock.NegativeFirstNumbering(cube), deadlock.Increasing); len(v) != 0 {
			b.Fatal("violations")
		}
	}
}

// BenchmarkSec34Adaptiveness: the Section 3.4 mean S_p/S_f ratio on an
// 8x8 mesh (the 16x16 version runs in the experiments binary).
func BenchmarkSec34Adaptiveness(b *testing.B) {
	mesh := topology.NewMesh(8, 8)
	nf := func(s, d topology.NodeID) *big.Int { return adapt.SNegativeFirst(mesh, s, d) }
	for i := 0; i < b.N; i++ {
		r := adapt.AverageRatio(mesh, nf)
		if r.MeanRatio <= 0.5 {
			b.Fatalf("ratio %v", r.MeanRatio)
		}
	}
}

// BenchmarkSec6PathLengths: the Section 6 average path length table.
func BenchmarkSec6PathLengths(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	cube := topology.NewHypercube(8)
	for i := 0; i < b.N; i++ {
		_ = traffic.AverageUniformPathLength(mesh)
		_ = traffic.AveragePathLength(mesh, traffic.NewMeshTranspose(mesh))
		_ = traffic.AveragePathLength(cube, traffic.NewReverseFlip(cube))
	}
}

// Ablation benches (DESIGN.md): output selection policy, buffer depth,
// and worm-advance mode, measured on the Figure 14 configuration where
// adaptivity matters most.

func ablationConfig(t *topology.Topology) sim.Config {
	return sim.Config{
		Algorithm:     routing.NewNegativeFirst(t),
		Pattern:       traffic.NewMeshTranspose(t),
		OfferedLoad:   1.75,
		WarmupCycles:  2000,
		MeasureCycles: 6000,
	}
}

// BenchmarkAblationOutputPolicy compares the paper's lowest-dimension
// policy with random and highest-dimension selection.
func BenchmarkAblationOutputPolicy(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	for _, pol := range []sim.OutputPolicy{sim.LowestDimension, sim.HighestDimension, sim.RandomPolicy} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := ablationConfig(mesh)
			cfg.Policy = pol
			benchSim(b, cfg)
		})
	}
}

// BenchmarkAblationBufferDepth compares the paper's single-flit input
// buffers with deeper ones.
func BenchmarkAblationBufferDepth(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			cfg := ablationConfig(mesh)
			cfg.BufferDepth = depth
			benchSim(b, cfg)
		})
	}
}

// BenchmarkAblationAdvanceMode compares chained (synchronized-worm)
// advance with strict store-and-advance.
func BenchmarkAblationAdvanceMode(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	for _, strict := range []bool{false, true} {
		name := "chained"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ablationConfig(mesh)
			cfg.StrictAdvance = strict
			benchSim(b, cfg)
		})
	}
}

// Microbenchmarks for the hot paths.

// BenchmarkCandidates measures one routing decision.
func BenchmarkCandidates(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	for _, alg := range []routing.Algorithm{
		routing.NewDimensionOrder(mesh),
		routing.NewWestFirst(mesh),
		routing.NewNegativeFirst(mesh),
	} {
		b.Run(alg.Name(), func(b *testing.B) {
			buf := make([]topology.Direction, 0, 4)
			src := mesh.ID(topology.Coord{2, 3})
			dst := mesh.ID(topology.Coord{13, 11})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = alg.Candidates(src, dst, routing.Injected, buf[:0])
			}
		})
	}
}

// BenchmarkSimulatorCycles measures raw simulation speed in
// cycles/second at a saturating load.
func BenchmarkSimulatorCycles(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	cfg := sim.Config{
		Algorithm:     routing.NewNegativeFirst(mesh),
		Pattern:       traffic.NewUniform(mesh),
		OfferedLoad:   2.0,
		WarmupCycles:  1,
		MeasureCycles: 5000,
		Seed:          1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkCDGBuild measures dependency-graph construction on the
// paper's two topologies.
func BenchmarkCDGBuild(b *testing.B) {
	for _, topo := range []*topology.Topology{topology.NewMesh(16, 16), topology.NewHypercube(8)} {
		b.Run(topo.String(), func(b *testing.B) {
			alg := routing.NewNegativeFirst(topo)
			for i := 0; i < b.N; i++ {
				g := deadlock.BuildCDG(alg)
				if !g.Acyclic() {
					b.Fatal("cycle")
				}
			}
		})
	}
}

// BenchmarkWalk measures a full route trace.
func BenchmarkWalk(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	alg := routing.NewWestFirst(mesh)
	src := mesh.ID(topology.Coord{15, 0})
	dst := mesh.ID(topology.Coord{0, 15})
	for i := 0; i < b.N; i++ {
		if _, err := routing.Walk(alg, src, dst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInputPolicy compares the paper's local
// first-come-first-served input selection with port-order and random
// arbitration (the selection-policy study the paper defers to its
// companion work).
func BenchmarkAblationInputPolicy(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	for _, pol := range []sim.InputPolicy{sim.LocalFCFS, sim.PortOrder, sim.RandomInput} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := ablationConfig(mesh)
			cfg.Input = pol
			benchSim(b, cfg)
		})
	}
}

// BenchmarkTorusExtensions: the Section 4.2 torus algorithms plus the
// dateline virtual-channel scheme under uniform traffic on an 8-ary
// 2-cube.
func BenchmarkTorusExtensions(b *testing.B) {
	torus := topology.NewTorus(8, 2)
	cfgs := map[string]sim.Config{
		"wrap-first-hop-nf":    {Algorithm: routing.NewWrapFirstHop(routing.NewNegativeFirst(torus))},
		"negative-first-torus": {Algorithm: routing.NewNegativeFirstTorus(torus)},
		"dateline-dor-2vc":     {VCAlgorithm: routing.NewDatelineDOR(torus)},
	}
	for name, cfg := range cfgs {
		b.Run(name, func(b *testing.B) {
			cfg.Pattern = traffic.NewUniform(torus)
			cfg.OfferedLoad = 1.5
			cfg.WarmupCycles = 2000
			cfg.MeasureCycles = 6000
			benchSim(b, cfg)
		})
	}
}

// BenchmarkIntroSwitching: the introduction's switching-technique
// latency comparison at a fixed distance.
func BenchmarkIntroSwitching(b *testing.B) {
	mesh := topology.NewMesh(16, 2)
	for _, sw := range []sim.Switching{sim.Wormhole, sim.VirtualCutThrough, sim.StoreAndForward} {
		b.Run(sw.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Algorithm: routing.NewDimensionOrder(mesh),
					Script: []sim.ScriptedMessage{{
						Src: mesh.ID(topology.Coord{0, 0}), Dst: mesh.ID(topology.Coord{12, 0}), Length: 32,
					}},
					Switching: sw,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles)/sim.CyclesPerMicrosecond, "latency_us")
		})
	}
}

// BenchmarkVCCDG: virtual-channel dependency graph verification of the
// dateline scheme.
func BenchmarkVCCDG(b *testing.B) {
	torus := topology.NewTorus(8, 2)
	alg := routing.NewDatelineDOR(torus)
	for i := 0; i < b.N; i++ {
		if !deadlock.BuildVCCDG(alg).Acyclic() {
			b.Fatal("cycle")
		}
	}
}

// BenchmarkAblationRouterDelay quantifies Section 7's caveat: extra
// route-computation delay for the adaptive router, on the transpose
// workload it wins.
func BenchmarkAblationRouterDelay(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	for _, delay := range []int64{0, 1, 2} {
		b.Run(fmt.Sprintf("delay%d", delay), func(b *testing.B) {
			cfg := ablationConfig(mesh)
			cfg.RouterDelay = delay
			benchSim(b, cfg)
		})
	}
}

// BenchmarkFullyAdaptiveDoubleY: the extra-channel fully adaptive
// relation on the Figure 14 workload, against the channel-free
// negative-first in BenchmarkFig14TransposeMesh.
func BenchmarkFullyAdaptiveDoubleY(b *testing.B) {
	mesh := topology.NewMesh(16, 16)
	benchSim(b, sim.Config{
		VCAlgorithm:   routing.NewDoubleY(mesh),
		Pattern:       traffic.NewMeshTranspose(mesh),
		OfferedLoad:   1.75,
		WarmupCycles:  2000,
		MeasureCycles: 6000,
	})
}
